// Command ccrun executes one collective-computing job on the simulated
// cluster from command-line flags: choose a workload (climate or wrf), an
// access region, an operator, the I/O mode and the reduce mode, and compare
// against the traditional baseline.
//
// Examples:
//
//	ccrun -workload climate -op mean -procs 64 -steps 32
//	ccrun -workload wrf -task minslp -procs 48 -steps 96
//	ccrun -workload climate -op maxloc -mode traditional
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/adio"
	"repro/internal/cc"
	"repro/internal/climate"
	"repro/internal/fabric"
	"repro/internal/layout"
	"repro/internal/mpi"
	"repro/internal/ncfile"
	"repro/internal/pfs"
	"repro/internal/sim"
	"repro/internal/wrf"
)

func main() {
	var (
		workload = flag.String("workload", "climate", "workload: climate | wrf")
		opName   = flag.String("op", "sum", "operator: sum|count|min|max|mean|minloc|maxloc (climate only)")
		task     = flag.String("task", "minslp", "wrf task: minslp | maxwind")
		procs    = flag.Int("procs", 48, "number of MPI ranks")
		rpn      = flag.Int("rpn", 24, "ranks per node")
		naggr    = flag.Int("aggregators", 0, "aggregator count (0 = one per node)")
		steps    = flag.Int64("steps", 24, "time steps to analyze")
		ny       = flag.Int64("ny", 512, "grid rows")
		nx       = flag.Int64("nx", 512, "grid columns")
		cb       = flag.Int64("cb", 4<<20, "collective buffer bytes")
		mode     = flag.String("mode", "cc", "mode: cc | traditional | independent")
		reduce   = flag.String("reduce", "all2one", "reduce: all2one | all2all")
		spe      = flag.Float64("comp", 2e-8, "map compute cost per element (seconds)")
		pipe     = flag.Bool("pipeline", true, "overlap reads with the shuffle")
	)
	flag.Parse()

	if *steps < int64(*procs) && *ny < int64(*procs) {
		fatal("need steps or ny >= procs to split the domain")
	}

	env := sim.NewEnv()
	w := mpi.NewWorld(env, *procs, fabric.Params{RanksPerNode: *rpn})
	fs := pfs.New(env, pfs.Params{})
	comm := w.Comm()

	var ds *ncfile.Dataset
	var varID int
	var op cc.Op
	var slab layout.Slab
	switch *workload {
	case "climate":
		var err error
		ds, varID, err = climate.NewDataset3D(fs, []int64{max64(*steps, 1024), *ny, *nx}, 40, 4<<20)
		check(err)
		op, err = cc.OpByName(*opName)
		check(err)
		slab = layout.Slab{Start: []int64{0, 0, 0}, Count: []int64{*steps, *ny, *nx}}
	case "wrf":
		storm := wrf.DefaultStorm(*steps, *ny, *nx)
		d, err := wrf.NewDataset(fs, storm, 40, 4<<20)
		check(err)
		ds = d.DS
		var tk wrf.Task
		switch *task {
		case "minslp":
			tk = d.MinSLPTask()
		case "maxwind":
			tk = d.MaxWindTask()
		default:
			fatal("unknown wrf task %q", *task)
		}
		varID, op = tk.VarID, tk.Op
		slab = d.FullSlab()
		fmt.Printf("task: %s\n", tk.Name)
	default:
		fatal("unknown workload %q", *workload)
	}

	splitDim := 0
	if slab.Count[0] < int64(*procs) {
		splitDim = 1
	}
	slabs := climate.SplitAlongDim(slab, splitDim, *procs)

	io := cc.IO{
		DS: ds, VarID: varID,
		Params:     adio.Params{CB: *cb, Pipeline: *pipe, PlanCache: &adio.PlanCache{}},
		SecPerElem: *spe,
		Stats:      &cc.Stats{},
	}
	switch *mode {
	case "cc":
	case "traditional":
		io.Block = true
	case "independent":
		io.Mode = cc.Independent
	default:
		fatal("unknown mode %q", *mode)
	}
	switch *reduce {
	case "all2one":
		io.Reduce = cc.AllToOne
	case "all2all":
		io.Reduce = cc.AllToAll
	default:
		fatal("unknown reduce %q", *reduce)
	}
	if *naggr > 0 {
		io.Aggregators = adio.SpreadAggregators(*procs, *naggr)
	}

	var rootRes cc.Result
	errs := make([]error, *procs)
	w.Go(func(r *mpi.Rank) {
		myIO := io
		myIO.Slab = slabs[r.Rank()]
		cl := fs.Client(r.Proc(), r.Rank(), nil)
		var res cc.Result
		res, errs[r.Rank()] = cc.ObjectGetVara(r, comm, cl, myIO, op)
		if res.Root {
			rootRes = res
		}
	})
	check(env.Run())
	for i, err := range errs {
		if err != nil {
			fatal("rank %d: %v", i, err)
		}
	}

	fmt.Printf("mode=%s reduce=%s procs=%d op=%s\n", *mode, *reduce, *procs, op.Name())
	fmt.Printf("result: %.6g\n", rootRes.Value)
	if loc, ok := rootRes.State.(cc.Loc); ok && loc.Valid {
		fmt.Printf("at coordinates: %v\n", loc.Coords)
	}
	fmt.Printf("virtual makespan: %.4fs\n", env.Now())
	st := io.Stats
	if st.MapElements > 0 {
		fmt.Printf("map: %d elements, %.4fs; construction %.4fs; local reduce %.4fs\n",
			st.MapElements, st.MapSeconds, st.ConstructSeconds, st.LocalReduceSeconds)
		fmt.Printf("shuffle: %d partial-result bytes vs %d raw bytes (%.1fx reduction), metadata %d bytes in %d records\n",
			st.ShuffleBytes, st.RawBytes, safeDiv(st.RawBytes, st.ShuffleBytes),
			st.MetadataBytes, st.IntermediateRecords)
	}
}

func safeDiv(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func check(err error) {
	if err != nil {
		fatal("%v", err)
	}
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "ccrun: "+format+"\n", args...)
	os.Exit(1)
}
