// Command ccrun executes one collective-computing job on the simulated
// cluster from command-line flags: choose a workload (climate or wrf), an
// access region, an operator, the I/O mode and the reduce mode, and compare
// against the traditional baseline. A seeded fault plan can be injected to
// study degradation, and the straggler mitigation (read timeout/retry plus
// between-round domain rebalancing) can be switched on against it.
//
// Examples:
//
//	ccrun -workload climate -op mean -procs 64 -steps 32
//	ccrun -workload wrf -task minslp -procs 48 -steps 96
//	ccrun -workload climate -op maxloc -mode traditional
//	ccrun -workload climate -stragglers 2 -read-timeout 0.02 -rebalance-rounds 4
//	ccrun -workload climate -op mean -trace trace.json -metrics metrics.txt
//	ccrun -workload climate -op sum -repeat 4 -memo
//
// -repeat submits the same job N times through the cluster job queue, and
// -memo enables the cluster's cross-job result cache + read coalescer on it,
// so duplicate submissions are served from one physical pass (bit-identically
// — the per-copy "[memo-hit]" markers show which copies never touched
// storage). The queued path covers the cc and traditional modes; it has no
// independent mode and manages pipelining and mitigation itself.
//
// -trace writes a Chrome trace-event JSON file of the run's span hierarchy
// (scheduler, cc phases, adio iterations, pfs requests, mpi messages) for
// ui.perfetto.dev; -metrics writes the matching metrics-registry dump. Both
// are byte-identical across runs of the same command line. The rest of the
// telemetry plane (-events, -serve, -dash, -slo, -slo-strict) rides the same
// tracer, and -explain adds the scheduler's per-round decision trace
// (repro.decisions.v1 lines in the event log, served at /decisions) plus a
// per-job wait attribution printed after the run.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/adio"
	"repro/internal/cc"
	"repro/internal/climate"
	"repro/internal/cluster"
	"repro/internal/fault"
	"repro/internal/layout"
	"repro/internal/mpi"
	"repro/internal/ncfile"
	"repro/internal/obs"
	"repro/internal/obscli"
	"repro/internal/prof"
	"repro/internal/wrf"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fl := flag.NewFlagSet("ccrun", flag.ContinueOnError)
	fl.SetOutput(stderr)
	var (
		workload = fl.String("workload", "climate", "workload: climate | wrf")
		opName   = fl.String("op", "sum", "operator: sum|count|min|max|mean|minloc|maxloc (climate only)")
		task     = fl.String("task", "minslp", "wrf task: minslp | maxwind")
		procs    = fl.Int("procs", 48, "number of MPI ranks")
		rpn      = fl.Int("rpn", 24, "ranks per node")
		naggr    = fl.Int("aggregators", 0, "aggregator count (0 = one per node)")
		steps    = fl.Int64("steps", 24, "time steps to analyze")
		ny       = fl.Int64("ny", 512, "grid rows")
		nx       = fl.Int64("nx", 512, "grid columns")
		cb       = fl.Int64("cb", 4<<20, "collective buffer bytes")
		mode     = fl.String("mode", "cc", "mode: cc | traditional | independent")
		reduce   = fl.String("reduce", "all2one", "reduce: all2one | all2all")
		spe      = fl.Float64("comp", 2e-8, "map compute cost per element (seconds)")
		pipe     = fl.Bool("pipeline", true, "overlap reads with the shuffle")
		repeat   = fl.Int("repeat", 1, "submit the job N times through the cluster job queue")
		memo     = fl.Bool("memo", false, "enable the cluster result cache + read coalescer (serves -repeat duplicates from one pass)")
		policy   = fl.String("policy", "", "scheduling policy for the queued path (-repeat/-memo): fifo|easy-backfill|priority|fairshare")

		// Fault injection (see internal/fault).
		faultSeed  = fl.Int64("fault-seed", 1, "fault plan PRNG seed")
		stragglers = fl.Int("stragglers", 0, "straggling OSTs to inject")
		stragFac   = fl.Float64("straggler-factor", 8, "straggler service slowdown")
		slowLinks  = fl.Int("slow-links", 0, "degraded-NIC nodes to inject")
		slowRanks  = fl.Int("slow-ranks", 0, "time-dilated ranks to inject")
		horizon    = fl.Float64("fault-horizon", 0.1, "virtual-time span fault episodes are placed in (s)")

		// Mitigation (see cc.Mitigation).
		readTimeout = fl.Float64("read-timeout", 0, "abandon+reissue OST reads predicted past this (s); 0 = off")
		readRetries = fl.Int("read-retries", 4, "retry budget per OST request")
		readBackoff = fl.Float64("read-backoff", 0, "extra wait per reissue (s)")
		rebalRounds = fl.Int("rebalance-rounds", 0, "split the read into rounds, replanning domains around flagged-slow OSTs; 0|1 = off")

		// Observability (see internal/obs).
		traceOut   = fl.String("trace", "", "write Chrome trace-event JSON (Perfetto) of the run here")
		metricsOut = fl.String("metrics", "", "write the metrics-registry dump here")
	)
	var tele obscli.Flags
	tele.Register(fl)
	var pf prof.Flags
	pf.Register(fl)
	if err := fl.Parse(args); err != nil {
		return 2
	}
	fail := func(format string, a ...interface{}) int {
		fmt.Fprintf(stderr, "ccrun: "+format+"\n", a...)
		return 1
	}
	stopProf, err := pf.Start()
	if err != nil {
		return fail("%v", err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintf(stderr, "ccrun: %v\n", err)
		}
	}()

	if *steps < int64(*procs) && *ny < int64(*procs) {
		return fail("need steps or ny >= procs to split the domain")
	}

	// finishRun ends either path: write -trace/-metrics, tear down the
	// telemetry plane, apply -slo-strict, then keep serving under -serve.
	var ot *obs.Tracer
	var plane *obscli.Plane
	finishRun := func() int {
		if code := writeObsOutputs(stderr, fail, ot, *traceOut, *metricsOut); code != 0 {
			return code
		}
		viol, err := plane.Finish()
		if err != nil {
			return fail("%v", err)
		}
		if tele.Strict && len(viol) > 0 {
			fmt.Fprintf(stderr, "ccrun: %d SLO violation(s) under -slo-strict\n", len(viol))
			return 1
		}
		if err := stopProf(); err != nil { // flush profiles before -serve blocks
			return fail("%v", err)
		}
		plane.ServeForever()
		return 0
	}

	if *traceOut != "" || *metricsOut != "" || tele.Any() {
		ot = obs.New()
	}
	if plane, err = tele.Attach(ot, stderr); err != nil {
		return fail("%v", err)
	}
	if *policy != "" {
		known := false
		for _, p := range cluster.PolicyNames() {
			known = known || p == *policy
		}
		if !known {
			return fail("unknown -policy %q (have %v)", *policy, cluster.PolicyNames())
		}
	}
	cl := cluster.New(cluster.Spec{Ranks: *procs, RanksPerNode: *rpn, Obs: ot, Memo: *memo, Policy: *policy})
	fs := cl.FS()

	if *stragglers > 0 || *slowLinks > 0 || *slowRanks > 0 {
		plan := fault.Gen(fault.Spec{
			Seed:    *faultSeed,
			NumOSTs: fs.Params().NumOSTs, NumNodes: cl.World().Net().Nodes(), NumRanks: *procs,
			Stragglers: *stragglers, StragglerFactor: *stragFac,
			Links: *slowLinks, SlowRanks: *slowRanks,
			Horizon: *horizon,
		})
		plan.Apply(cl.World(), fs)
		fmt.Fprintln(stdout, plan)
	}

	var ds *ncfile.Dataset
	var varID int
	var op cc.Op
	var slab layout.Slab
	switch *workload {
	case "climate":
		var err error
		ds, varID, err = climate.NewDataset3D(fs, []int64{max64(*steps, 1024), *ny, *nx}, 40, 4<<20)
		if err != nil {
			return fail("%v", err)
		}
		op, err = cc.OpByName(*opName)
		if err != nil {
			return fail("%v", err)
		}
		slab = layout.Slab{Start: []int64{0, 0, 0}, Count: []int64{*steps, *ny, *nx}}
	case "wrf":
		storm := wrf.DefaultStorm(*steps, *ny, *nx)
		d, err := wrf.NewDataset(fs, storm, 40, 4<<20)
		if err != nil {
			return fail("%v", err)
		}
		ds = d.DS
		var tk wrf.Task
		switch *task {
		case "minslp":
			tk = d.MinSLPTask()
		case "maxwind":
			tk = d.MaxWindTask()
		default:
			return fail("unknown wrf task %q", *task)
		}
		varID, op = tk.VarID, tk.Op
		slab = d.FullSlab()
		fmt.Fprintf(stdout, "task: %s\n", tk.Name)
	default:
		return fail("unknown workload %q", *workload)
	}

	splitDim := 0
	if slab.Count[0] < int64(*procs) {
		splitDim = 1
	}
	slabs := climate.SplitAlongDim(slab, splitDim, *procs)

	job := cc.IO{
		DS: ds, VarID: varID,
		Params:     adio.Params{CB: *cb, Pipeline: *pipe, PlanCache: &adio.PlanCache{}},
		SecPerElem: *spe,
		Stats:      &cc.Stats{},
		Mitigate: cc.Mitigation{
			ReadTimeout: *readTimeout, MaxRetries: *readRetries, Backoff: *readBackoff,
			RebalanceRounds: *rebalRounds,
		},
	}
	switch *mode {
	case "cc":
	case "traditional":
		job.Block = true
	case "independent":
		job.Mode = cc.Independent
	default:
		return fail("unknown mode %q", *mode)
	}
	switch *reduce {
	case "all2one":
		job.Reduce = cc.AllToOne
	case "all2all":
		job.Reduce = cc.AllToAll
	default:
		return fail("unknown reduce %q", *reduce)
	}
	if *naggr > 0 {
		job.Aggregators = adio.SpreadAggregators(*procs, *naggr)
	}

	// The queued path: submit through the cluster scheduler so the result
	// cache can serve duplicate submissions (see internal/cluster/memo.go).
	if *memo || *repeat != 1 {
		if *repeat < 1 {
			return fail("-repeat must be >= 1")
		}
		if *mode == "independent" {
			return fail("-memo/-repeat use the cluster job queue, which has no independent mode")
		}
		if *readTimeout > 0 || *readBackoff > 0 || *rebalRounds > 1 {
			return fail("-memo/-repeat cannot combine with mitigation flags (the queued path manages I/O itself)")
		}
		if *naggr > 0 {
			return fail("-memo/-repeat cannot combine with -aggregators")
		}
		cl.RegisterDataset(*workload, ds)
		crs := make([]*cluster.CCResult, *repeat)
		for i := range crs {
			crs[i] = cl.SubmitCC(cluster.CCJob{
				Name: fmt.Sprintf("%s-%d", *workload, i), Ranks: *procs,
				Dataset: *workload, VarID: varID,
				Slab: slab, SplitDim: splitDim,
				Op: op, Block: *mode == "traditional", Reduce: job.Reduce,
				SecPerElem: *spe, CB: *cb,
			})
		}
		if _, err := cl.Run(); err != nil {
			return fail("%v", err)
		}
		fmt.Fprintf(stdout, "mode=%s reduce=%s procs=%d op=%s repeat=%d memo=%v\n",
			*mode, *reduce, *procs, op.Name(), *repeat, *memo)
		for _, cr := range crs {
			if !cr.Valid() {
				return fail("%s: %v", cr.Job.Name, cr.Err)
			}
			how := "ran"
			switch {
			case cr.MemoHit:
				how = "memo-hit"
			case cr.CoalescedWith != nil:
				how = "shared w/ " + cr.CoalescedWith.Job.Name
			}
			fmt.Fprintf(stdout, "%s: result %.6g [%s] %.4fs\n",
				cr.Job.Name, cr.Res.Value, how, cr.Duration())
		}
		if loc, ok := crs[0].Res.State.(cc.Loc); ok && loc.Valid {
			fmt.Fprintf(stdout, "at coordinates: %v\n", loc.Coords)
		}
		fmt.Fprintf(stdout, "virtual makespan: %.4fs\n", cl.Now())
		if *memo {
			st := cl.MemoStats()
			fmt.Fprintf(stdout, "memo: %d hits, %d waiters, %d coalesced, %d physical passes, %.1f MB not re-read\n",
				st.Hits, st.Waiters, st.Coalesced, st.Misses, float64(st.BytesSaved)/1e6)
		}
		return finishRun()
	}

	var rootRes cc.Result
	makespan, err := cl.RunSPMD(*workload, func(ctx *cluster.JobContext, r *mpi.Rank) error {
		myIO := job
		myIO.Slab = slabs[ctx.Comm().RankOf(r)]
		res, err := cc.ObjectGetVara(r, ctx.Comm(), ctx.Client(r), myIO, op)
		if res.Root {
			rootRes = res
		}
		return err
	})
	if err != nil {
		return fail("%v", err)
	}

	fmt.Fprintf(stdout, "mode=%s reduce=%s procs=%d op=%s\n", *mode, *reduce, *procs, op.Name())
	fmt.Fprintf(stdout, "result: %.6g\n", rootRes.Value)
	if loc, ok := rootRes.State.(cc.Loc); ok && loc.Valid {
		fmt.Fprintf(stdout, "at coordinates: %v\n", loc.Coords)
	}
	fmt.Fprintf(stdout, "virtual makespan: %.4fs\n", makespan)
	st := job.Stats
	if st.MapElements > 0 {
		fmt.Fprintf(stdout, "map: %d elements, %.4fs; construction %.4fs; local reduce %.4fs\n",
			st.MapElements, st.MapSeconds, st.ConstructSeconds, st.LocalReduceSeconds)
		fmt.Fprintf(stdout, "shuffle: %d partial-result bytes vs %d raw bytes (%.1fx reduction), metadata %d bytes in %d records\n",
			st.ShuffleBytes, st.RawBytes, safeDiv(st.RawBytes, st.ShuffleBytes),
			st.MetadataBytes, st.IntermediateRecords)
	}
	if st.IOTimeouts > 0 || st.Rebalances > 0 {
		fmt.Fprintf(stdout, "mitigation: %d timeouts, %d retries, %.4fs backoff, %d rebalances (%d flagged-slow OSTs)\n",
			st.IOTimeouts, st.IORetries, st.BackoffSeconds, st.Rebalances, st.FlaggedSlowOSTs)
	}
	return finishRun()
}

// writeObsOutputs writes the -trace and -metrics files (both optional) at the
// end of a run, shared by the direct and queued paths.
func writeObsOutputs(stderr io.Writer, fail func(string, ...interface{}) int, ot *obs.Tracer, traceOut, metricsOut string) int {
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			return fail("trace: %v", err)
		}
		if err := ot.WriteChromeTrace(f); err != nil {
			f.Close()
			return fail("trace: %v", err)
		}
		if err := f.Close(); err != nil {
			return fail("trace: %v", err)
		}
		fmt.Fprintf(stderr, "(trace: %d spans -> %s; open at ui.perfetto.dev)\n", ot.NumSpans(), traceOut)
	}
	if metricsOut != "" {
		if err := os.WriteFile(metricsOut, []byte(ot.Metrics().Dump()), 0o644); err != nil {
			return fail("metrics: %v", err)
		}
	}
	return 0
}

func safeDiv(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
