// Command ccexp regenerates the paper's tables and figures on the simulated
// cluster.
//
// Usage:
//
//	ccexp [-scale 0.1] [-quick] [-memo] [-policy easy-backfill] [-bench-dir d] [all|table1|fig1|fig2|fig3|fig9|fig10|fig11|fig12|fig13|faults|jobs|sched-policies|multiuser|profile-jobs|explain ...]
//	ccexp -experiment jobs -trace trace.json -metrics metrics.txt
//
// With no experiment arguments it lists the available experiments. -scale
// multiplies the real data volume streamed through the simulator (1.0 =
// paper scale); protocol parameters (process counts, aggregators, buffer
// sizes) always match the paper. Tables go to stdout and are byte-identical
// across runs (the simulation is deterministic); wall-clock timing goes to
// stderr.
//
// -trace writes a Chrome trace-event JSON file (load it at ui.perfetto.dev)
// of the experiment's instrumented cluster run, and -metrics writes the
// matching metrics-registry dump. Both require exactly one experiment so the
// trace unambiguously describes one run; both files are byte-identical
// across runs, like the tables. -experiment is a repeatable alias for the
// positional experiment arguments.
//
// The live telemetry plane (see internal/obs and internal/obscli) attaches
// with -events (streaming JSONL event log, byte-identical across identical
// runs), -serve (Prometheus-text /metrics plus /healthz and /jobs, served
// while the run is in flight and until interrupted afterwards), -dash (live
// terminal dashboard on stderr), and -slo/-slo-strict (declarative SLO rules
// evaluated at scheduler round boundaries; strict mode exits nonzero if any
// rule fired). Like -trace, these require exactly one experiment:
//
//	ccexp -experiment jobs -events events.jsonl -serve :9090 -slo-strict
//
// -stream turns the -events log into a pass-through: events are written to
// disk as they happen and never retained in memory, so very large runs (the
// workload experiment at scale) log in bounded memory with unchanged bytes.
// It conflicts with -trace and -explain, which need retained state.
//
// The workload experiment generates a multi-tenant job stream
// (internal/workload) and sweeps its arrival rate; -workload overrides the
// generation ("jobs=50000,rate=2,seed=7,..."), -trace-out records the
// generated stream as a versioned repro.workload.v1 file, and -trace-in
// replays such a file byte-identically instead of generating:
//
//	ccexp workload -workload jobs=50000 -trace-out stream.wl.jsonl
//	ccexp workload -trace-in stream.wl.jsonl
//
// -explain records a per-round scheduler decision trace (repro.decisions.v1
// lines interleaved into -events, served live at /decisions with -serve) and
// prints the per-job wait attribution after the run. The explain experiment
// goes further: it replays the recorded submission stream under alternative
// policies and reports counterfactual start-time deltas for one job. Flags
// may follow the experiment name, so the natural spelling works:
//
//	ccexp explain -job 3 -k fifo,easy-backfill
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/obscli"
	"repro/internal/prof"
)

// experimentList collects repeated -experiment flags.
type experimentList []string

func (l *experimentList) String() string { return fmt.Sprint([]string(*l)) }

func (l *experimentList) Set(v string) error {
	*l = append(*l, v)
	return nil
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fl := flag.NewFlagSet("ccexp", flag.ContinueOnError)
	fl.SetOutput(stderr)
	scale := fl.Float64("scale", 0.1, "data-volume scale relative to the paper (1.0 = full)")
	quick := fl.Bool("quick", false, "shrink process counts too (smoke test)")
	benchDir := fl.String("bench-dir", "", "directory to write BENCH_<id>.json metric files to (created if missing)")
	memo := fl.Bool("memo", false, "enable the cluster result cache + read coalescer on experiment machines (multiuser measures both settings itself)")
	policy := fl.String("policy", "", "cluster scheduling policy for the queued-workload experiments: "+policyList()+" (\"\" = fifo; sched-policies sweeps all)")
	explainJob := fl.Int("job", -1, "explain experiment: submission index of the job to attribute (-1 = the longest-waiting job)")
	explainK := fl.String("k", "", "explain experiment: comma-separated policy set to replay under; first entry is the factual policy (\"\" = fifo,easy-backfill)")
	traceOut := fl.String("trace", "", "write Chrome trace-event JSON (Perfetto) here; needs exactly one experiment")
	metricsOut := fl.String("metrics", "", "write the metrics-registry dump here; needs exactly one experiment")
	wlSpec := fl.String("workload", "", "workload experiment: generation overrides as \"jobs=50000,rate=2,rates=0.5;1;2,horizon=600,seed=7,policy=priority\"")
	wlOut := fl.String("trace-out", "", "workload experiment: record the generated stream as a repro.workload.v1 trace here (single base-rate run)")
	wlIn := fl.String("trace-in", "", "workload experiment: replay this repro.workload.v1 trace instead of generating (single run)")
	repIn := fl.String("in", "", "report experiment: analyze this recorded repro.events.v1 log (\"\" = record and report a self-demo run)")
	repSeries := fl.String("series-in", "", "report experiment: also read this repro.series.v1 time-series log")
	repTopK := fl.Int("topk", 0, "report experiment: size of the slowest-queued-jobs table (0 = 5)")
	var tele obscli.Flags
	tele.Register(fl)
	var pf prof.Flags
	pf.Register(fl)
	var expFlags experimentList
	fl.Var(&expFlags, "experiment", "experiment to run (repeatable; alias for positional arguments)")
	fl.Usage = func() {
		fmt.Fprintf(stderr, "usage: ccexp [flags] all|<experiment> ...\n\nflags:\n")
		fl.PrintDefaults()
		fmt.Fprintf(stderr, "\nexperiments:\n")
		for _, r := range experiments.All() {
			fmt.Fprintf(stderr, "  %-8s %s\n", r.ID, r.Name)
		}
	}
	if err := fl.Parse(args); err != nil {
		return 2
	}
	// flag stops at the first positional argument, but `ccexp explain -job 3`
	// reads naturally — so alternate between collecting positionals and
	// re-parsing flag runs until the argument list is exhausted.
	var rest []string
	for tail := fl.Args(); len(tail) > 0; tail = fl.Args() {
		if len(tail[0]) > 1 && strings.HasPrefix(tail[0], "-") {
			if err := fl.Parse(tail); err != nil {
				return 2
			}
			continue
		}
		rest = append(rest, tail[0])
		if err := fl.Parse(tail[1:]); err != nil {
			return 2
		}
	}
	rest = append([]string(expFlags), rest...)
	if len(rest) == 0 {
		fl.Usage()
		return 2
	}
	if *policy != "" && !knownPolicy(*policy) {
		fmt.Fprintf(stderr, "ccexp: unknown -policy %q (have %s)\n", *policy, policyList())
		return 2
	}
	cfg := experiments.Config{Scale: *scale, Quick: *quick, Memo: *memo, Policy: *policy,
		ExplainJob: *explainJob, ExplainPolicies: *explainK,
		WorkloadSpec: *wlSpec, WorkloadTraceOut: *wlOut, WorkloadTraceIn: *wlIn,
		ReportIn: *repIn, ReportSeriesIn: *repSeries, ReportTopK: *repTopK}

	var runners []experiments.Runner
	for _, a := range rest {
		if a == "all" {
			runners = experiments.All()
			break
		}
		r, ok := experiments.ByID(a)
		if !ok {
			fmt.Fprintf(stderr, "ccexp: unknown experiment %q\n", a)
			return 2
		}
		runners = append(runners, r)
	}
	if (*traceOut != "" || *metricsOut != "" || tele.Any()) && len(runners) != 1 {
		fmt.Fprintf(stderr, "ccexp: -trace/-metrics/-events/-serve/-dash/-slo need exactly one experiment (got %d)\n", len(runners))
		return 2
	}
	if tele.Stream && *traceOut != "" {
		fmt.Fprintf(stderr, "ccexp: -stream and -trace conflict (the Perfetto export needs retained spans)\n")
		return 2
	}
	if *traceOut != "" || *metricsOut != "" || tele.Any() {
		cfg.Obs = obs.New()
	}
	plane, err := tele.Attach(cfg.Obs, stderr)
	if err != nil {
		fmt.Fprintf(stderr, "ccexp: %v\n", err)
		return 1
	}
	stopProf, err := pf.Start()
	if err != nil {
		fmt.Fprintf(stderr, "ccexp: %v\n", err)
		return 1
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintf(stderr, "ccexp: %v\n", err)
		}
	}()
	for _, r := range runners {
		start := time.Now()
		tb, err := r.Run(cfg)
		if err != nil {
			fmt.Fprintf(stderr, "ccexp: %s: %v\n", r.ID, err)
			return 1
		}
		tb.Fprint(stdout)
		fmt.Fprintln(stdout)
		if *benchDir != "" && len(tb.Bench) > 0 {
			if err := writeBench(*benchDir, tb); err != nil {
				fmt.Fprintf(stderr, "ccexp: %s: %v\n", r.ID, err)
				return 1
			}
		}
		fmt.Fprintf(stderr, "(%s regenerated in %.1fs wall)\n", r.ID, time.Since(start).Seconds())
	}
	if *wlOut != "" {
		fmt.Fprintf(stderr, "(workload trace recorded to %s)\n", *wlOut)
	}
	if *traceOut != "" {
		if err := writeTrace(*traceOut, cfg.Obs); err != nil {
			fmt.Fprintf(stderr, "ccexp: trace: %v\n", err)
			return 1
		}
		fmt.Fprintf(stderr, "(trace: %d spans -> %s; open at ui.perfetto.dev)\n", cfg.Obs.NumSpans(), *traceOut)
	}
	if *metricsOut != "" {
		if err := os.WriteFile(*metricsOut, []byte(cfg.Obs.Metrics().Dump()), 0o644); err != nil {
			fmt.Fprintf(stderr, "ccexp: metrics: %v\n", err)
			return 1
		}
	}
	viol, err := plane.Finish()
	if err != nil {
		fmt.Fprintf(stderr, "ccexp: %v\n", err)
		return 1
	}
	if tele.Strict && len(viol) > 0 {
		fmt.Fprintf(stderr, "ccexp: %d SLO violation(s) under -slo-strict\n", len(viol))
		return 1
	}
	if err := stopProf(); err != nil { // flush profiles before -serve blocks
		fmt.Fprintf(stderr, "ccexp: %v\n", err)
		return 1
	}
	plane.ServeForever()
	return 0
}

// writeTrace exports the tracer's spans as Chrome trace-event JSON.
func writeTrace(path string, ot *obs.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := ot.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// policyList renders the registered scheduling policies for flag help.
func policyList() string { return strings.Join(cluster.PolicyNames(), "|") }

// knownPolicy reports whether name is a registered scheduling policy.
func knownPolicy(name string) bool {
	for _, p := range cluster.PolicyNames() {
		if p == name {
			return true
		}
	}
	return false
}

// writeBench dumps a table's headline metrics as BENCH_<id>.json. Map keys
// marshal sorted, so the bytes are deterministic.
func writeBench(dir string, tb *experiments.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	b, err := json.MarshalIndent(tb.Bench, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "BENCH_"+tb.ID+".json"), append(b, '\n'), 0o644)
}
