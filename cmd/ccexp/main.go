// Command ccexp regenerates the paper's tables and figures on the simulated
// cluster.
//
// Usage:
//
//	ccexp [-scale 0.1] [-quick] [all|table1|fig1|fig2|fig3|fig9|fig10|fig11|fig12|fig13 ...]
//
// With no experiment arguments it lists the available experiments. -scale
// multiplies the real data volume streamed through the simulator (1.0 =
// paper scale); protocol parameters (process counts, aggregators, buffer
// sizes) always match the paper.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	scale := flag.Float64("scale", 0.1, "data-volume scale relative to the paper (1.0 = full)")
	quick := flag.Bool("quick", false, "shrink process counts too (smoke test)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: ccexp [flags] all|<experiment> ...\n\nflags:\n")
		flag.PrintDefaults()
		fmt.Fprintf(os.Stderr, "\nexperiments:\n")
		for _, r := range experiments.All() {
			fmt.Fprintf(os.Stderr, "  %-8s %s\n", r.ID, r.Name)
		}
	}
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	cfg := experiments.Config{Scale: *scale, Quick: *quick}

	var runners []experiments.Runner
	for _, a := range args {
		if a == "all" {
			runners = experiments.All()
			break
		}
		r, ok := experiments.ByID(a)
		if !ok {
			fmt.Fprintf(os.Stderr, "ccexp: unknown experiment %q\n", a)
			os.Exit(2)
		}
		runners = append(runners, r)
	}
	for _, r := range runners {
		start := time.Now()
		tb, err := r.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ccexp: %s: %v\n", r.ID, err)
			os.Exit(1)
		}
		tb.Fprint(os.Stdout)
		fmt.Printf("(%s regenerated in %.1fs wall)\n\n", r.ID, time.Since(start).Seconds())
	}
}
