// Command ccexp regenerates the paper's tables and figures on the simulated
// cluster.
//
// Usage:
//
//	ccexp [-scale 0.1] [-quick] [all|table1|fig1|fig2|fig3|fig9|fig10|fig11|fig12|fig13|faults ...]
//
// With no experiment arguments it lists the available experiments. -scale
// multiplies the real data volume streamed through the simulator (1.0 =
// paper scale); protocol parameters (process counts, aggregators, buffer
// sizes) always match the paper. Tables go to stdout and are byte-identical
// across runs (the simulation is deterministic); wall-clock timing goes to
// stderr.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fl := flag.NewFlagSet("ccexp", flag.ContinueOnError)
	fl.SetOutput(stderr)
	scale := fl.Float64("scale", 0.1, "data-volume scale relative to the paper (1.0 = full)")
	quick := fl.Bool("quick", false, "shrink process counts too (smoke test)")
	fl.Usage = func() {
		fmt.Fprintf(stderr, "usage: ccexp [flags] all|<experiment> ...\n\nflags:\n")
		fl.PrintDefaults()
		fmt.Fprintf(stderr, "\nexperiments:\n")
		for _, r := range experiments.All() {
			fmt.Fprintf(stderr, "  %-8s %s\n", r.ID, r.Name)
		}
	}
	if err := fl.Parse(args); err != nil {
		return 2
	}
	rest := fl.Args()
	if len(rest) == 0 {
		fl.Usage()
		return 2
	}
	cfg := experiments.Config{Scale: *scale, Quick: *quick}

	var runners []experiments.Runner
	for _, a := range rest {
		if a == "all" {
			runners = experiments.All()
			break
		}
		r, ok := experiments.ByID(a)
		if !ok {
			fmt.Fprintf(stderr, "ccexp: unknown experiment %q\n", a)
			return 2
		}
		runners = append(runners, r)
	}
	for _, r := range runners {
		start := time.Now()
		tb, err := r.Run(cfg)
		if err != nil {
			fmt.Fprintf(stderr, "ccexp: %s: %v\n", r.ID, err)
			return 1
		}
		tb.Fprint(stdout)
		fmt.Fprintln(stdout)
		fmt.Fprintf(stderr, "(%s regenerated in %.1fs wall)\n", r.ID, time.Since(start).Seconds())
	}
	return 0
}
