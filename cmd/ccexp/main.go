// Command ccexp regenerates the paper's tables and figures on the simulated
// cluster.
//
// Usage:
//
//	ccexp [-scale 0.1] [-quick] [-bench-dir d] [all|table1|fig1|fig2|fig3|fig9|fig10|fig11|fig12|fig13|faults|jobs ...]
//
// With no experiment arguments it lists the available experiments. -scale
// multiplies the real data volume streamed through the simulator (1.0 =
// paper scale); protocol parameters (process counts, aggregators, buffer
// sizes) always match the paper. Tables go to stdout and are byte-identical
// across runs (the simulation is deterministic); wall-clock timing goes to
// stderr.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"repro/internal/experiments"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fl := flag.NewFlagSet("ccexp", flag.ContinueOnError)
	fl.SetOutput(stderr)
	scale := fl.Float64("scale", 0.1, "data-volume scale relative to the paper (1.0 = full)")
	quick := fl.Bool("quick", false, "shrink process counts too (smoke test)")
	benchDir := fl.String("bench-dir", "", "directory to write BENCH_<id>.json metric files to (created if missing)")
	fl.Usage = func() {
		fmt.Fprintf(stderr, "usage: ccexp [flags] all|<experiment> ...\n\nflags:\n")
		fl.PrintDefaults()
		fmt.Fprintf(stderr, "\nexperiments:\n")
		for _, r := range experiments.All() {
			fmt.Fprintf(stderr, "  %-8s %s\n", r.ID, r.Name)
		}
	}
	if err := fl.Parse(args); err != nil {
		return 2
	}
	rest := fl.Args()
	if len(rest) == 0 {
		fl.Usage()
		return 2
	}
	cfg := experiments.Config{Scale: *scale, Quick: *quick}

	var runners []experiments.Runner
	for _, a := range rest {
		if a == "all" {
			runners = experiments.All()
			break
		}
		r, ok := experiments.ByID(a)
		if !ok {
			fmt.Fprintf(stderr, "ccexp: unknown experiment %q\n", a)
			return 2
		}
		runners = append(runners, r)
	}
	for _, r := range runners {
		start := time.Now()
		tb, err := r.Run(cfg)
		if err != nil {
			fmt.Fprintf(stderr, "ccexp: %s: %v\n", r.ID, err)
			return 1
		}
		tb.Fprint(stdout)
		fmt.Fprintln(stdout)
		if *benchDir != "" && len(tb.Bench) > 0 {
			if err := writeBench(*benchDir, tb); err != nil {
				fmt.Fprintf(stderr, "ccexp: %s: %v\n", r.ID, err)
				return 1
			}
		}
		fmt.Fprintf(stderr, "(%s regenerated in %.1fs wall)\n", r.ID, time.Since(start).Seconds())
	}
	return 0
}

// writeBench dumps a table's headline metrics as BENCH_<id>.json. Map keys
// marshal sorted, so the bytes are deterministic.
func writeBench(dir string, tb *experiments.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	b, err := json.MarshalIndent(tb.Bench, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "BENCH_"+tb.ID+".json"), append(b, '\n'), 0o644)
}
