package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCmd(args ...string) (int, string, string) {
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestNoArgsPrintsUsage(t *testing.T) {
	code, out, errb := runCmd()
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if out != "" {
		t.Fatalf("usage must go to stderr, stdout has %q", out)
	}
	for _, want := range []string{"usage:", "table1", "faults"} {
		if !strings.Contains(errb, want) {
			t.Fatalf("usage missing %q:\n%s", want, errb)
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	code, _, errb := runCmd("nonesuch")
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(errb, `unknown experiment "nonesuch"`) {
		t.Fatalf("stderr: %q", errb)
	}
}

func TestBadFlag(t *testing.T) {
	if code, _, _ := runCmd("-nope"); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

func TestTable1(t *testing.T) {
	code, out, _ := runCmd("table1")
	if code != 0 {
		t.Fatalf("exit %d, want 0", code)
	}
	if !strings.Contains(out, "INCITE") {
		t.Fatalf("stdout missing Table I:\n%s", out)
	}
}

// TestFaultsStdoutDeterministic runs the faults experiment twice and demands
// byte-identical stdout: the acceptance bar for the fault subsystem (timing
// goes to stderr precisely so this holds).
func TestFaultsStdoutDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the faults experiment twice")
	}
	code1, out1, _ := runCmd("-quick", "faults")
	if code1 != 0 {
		t.Fatalf("first run: exit %d", code1)
	}
	code2, out2, _ := runCmd("-quick", "faults")
	if code2 != 0 {
		t.Fatalf("second run: exit %d", code2)
	}
	if out1 != out2 {
		t.Fatalf("faults output not byte-identical:\n--- first\n%s\n--- second\n%s", out1, out2)
	}
	for _, want := range []string{"recovered", "fault-free CC reference"} {
		if !strings.Contains(out1, want) {
			t.Fatalf("faults output missing %q:\n%s", want, out1)
		}
	}
}

// TestJobsStdoutDeterministic runs the jobs experiment twice and demands
// byte-identical stdout — the scheduler-determinism acceptance bar for the
// cluster runtime.
func TestJobsStdoutDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the jobs experiment twice")
	}
	code1, out1, _ := runCmd("-quick", "jobs")
	if code1 != 0 {
		t.Fatalf("first run: exit %d", code1)
	}
	code2, out2, _ := runCmd("-quick", "jobs")
	if code2 != 0 {
		t.Fatalf("second run: exit %d", code2)
	}
	if out1 != out2 {
		t.Fatalf("jobs output not byte-identical:\n--- first\n%s\n--- second\n%s", out1, out2)
	}
	for _, want := range []string{"speedup", "bit-identical", "deadline misses: 0 serial, 0 concurrent"} {
		if !strings.Contains(out1, want) {
			t.Fatalf("jobs output missing %q:\n%s", want, out1)
		}
	}
}

// TestBenchDirWritesJSON checks -bench-dir emits the machine-readable
// metrics file, with deterministic bytes across runs.
func TestBenchDirWritesJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the jobs experiment twice")
	}
	read := func() string {
		dir := t.TempDir()
		if code, _, errb := runCmd("-quick", "-bench-dir", dir, "jobs"); code != 0 {
			t.Fatalf("exit %d: %s", code, errb)
		}
		b, err := os.ReadFile(filepath.Join(dir, "BENCH_jobs.json"))
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	j1 := read()
	for _, key := range []string{"virtual_makespan_serial", "virtual_makespan_concurrent",
		"speedup", "throughput_jobs_per_vs"} {
		if !strings.Contains(j1, `"`+key+`"`) {
			t.Fatalf("BENCH_jobs.json missing %q:\n%s", key, j1)
		}
	}
	if j2 := read(); j1 != j2 {
		t.Fatalf("BENCH_jobs.json not deterministic:\n%s\nvs\n%s", j1, j2)
	}
}
