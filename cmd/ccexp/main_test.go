package main

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCmd(args ...string) (int, string, string) {
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestNoArgsPrintsUsage(t *testing.T) {
	code, out, errb := runCmd()
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if out != "" {
		t.Fatalf("usage must go to stderr, stdout has %q", out)
	}
	for _, want := range []string{"usage:", "table1", "faults"} {
		if !strings.Contains(errb, want) {
			t.Fatalf("usage missing %q:\n%s", want, errb)
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	code, _, errb := runCmd("nonesuch")
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(errb, `unknown experiment "nonesuch"`) {
		t.Fatalf("stderr: %q", errb)
	}
}

func TestBadFlag(t *testing.T) {
	if code, _, _ := runCmd("-nope"); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

func TestTable1(t *testing.T) {
	code, out, _ := runCmd("table1")
	if code != 0 {
		t.Fatalf("exit %d, want 0", code)
	}
	if !strings.Contains(out, "INCITE") {
		t.Fatalf("stdout missing Table I:\n%s", out)
	}
}

// TestFaultsStdoutDeterministic runs the faults experiment twice and demands
// byte-identical stdout: the acceptance bar for the fault subsystem (timing
// goes to stderr precisely so this holds).
func TestFaultsStdoutDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the faults experiment twice")
	}
	code1, out1, _ := runCmd("-quick", "faults")
	if code1 != 0 {
		t.Fatalf("first run: exit %d", code1)
	}
	code2, out2, _ := runCmd("-quick", "faults")
	if code2 != 0 {
		t.Fatalf("second run: exit %d", code2)
	}
	if out1 != out2 {
		t.Fatalf("faults output not byte-identical:\n--- first\n%s\n--- second\n%s", out1, out2)
	}
	for _, want := range []string{"recovered", "fault-free CC reference"} {
		if !strings.Contains(out1, want) {
			t.Fatalf("faults output missing %q:\n%s", want, out1)
		}
	}
}

// TestJobsStdoutDeterministic runs the jobs experiment twice and demands
// byte-identical stdout — the scheduler-determinism acceptance bar for the
// cluster runtime.
func TestJobsStdoutDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the jobs experiment twice")
	}
	code1, out1, _ := runCmd("-quick", "jobs")
	if code1 != 0 {
		t.Fatalf("first run: exit %d", code1)
	}
	code2, out2, _ := runCmd("-quick", "jobs")
	if code2 != 0 {
		t.Fatalf("second run: exit %d", code2)
	}
	if out1 != out2 {
		t.Fatalf("jobs output not byte-identical:\n--- first\n%s\n--- second\n%s", out1, out2)
	}
	for _, want := range []string{"speedup", "bit-identical", "deadline misses: 0 serial, 0 concurrent"} {
		if !strings.Contains(out1, want) {
			t.Fatalf("jobs output missing %q:\n%s", want, out1)
		}
	}
}

// TestTraceNeedsOneExperiment pins the -trace/-metrics guard: a trace file
// must describe exactly one experiment run.
func TestTraceNeedsOneExperiment(t *testing.T) {
	dir := t.TempDir()
	tr := filepath.Join(dir, "t.json")
	for _, args := range [][]string{
		{"-trace", tr},
		{"-trace", tr, "table1", "fig1"},
		{"-metrics", filepath.Join(dir, "m.txt"), "all"},
	} {
		code, _, errb := runCmd(args...)
		if code != 2 {
			t.Errorf("%v: exit %d, want 2 (stderr %q)", args, code, errb)
		}
	}
}

// TestTraceExportDeterministic is the observability acceptance bar:
// `ccexp -experiment jobs -trace ...` must write valid Chrome trace-event
// JSON with the scheduler/cc/adio span hierarchy, plus a metrics dump, and
// both files must be byte-identical across runs.
func TestTraceExportDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the jobs experiment twice")
	}
	read := func() (string, string) {
		dir := t.TempDir()
		tr := filepath.Join(dir, "trace.json")
		mt := filepath.Join(dir, "metrics.txt")
		code, _, errb := runCmd("-quick", "-experiment", "jobs", "-trace", tr, "-metrics", mt)
		if code != 0 {
			t.Fatalf("exit %d: %s", code, errb)
		}
		tb, err := os.ReadFile(tr)
		if err != nil {
			t.Fatal(err)
		}
		mb, err := os.ReadFile(mt)
		if err != nil {
			t.Fatal(err)
		}
		return string(tb), string(mb)
	}
	tr1, m1 := read()
	var parsed struct {
		TraceEvents []map[string]interface{} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(tr1), &parsed); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(parsed.TraceEvents) < 20 {
		t.Fatalf("only %d trace events", len(parsed.TraceEvents))
	}
	for _, want := range []string{`"run"`, `"queued"`, `"cc.get"`, `"adio.iter"`} {
		if !strings.Contains(tr1, want) {
			t.Errorf("trace missing %s events", want)
		}
	}
	if !strings.Contains(m1, "counter cluster_jobs_admitted") ||
		!strings.Contains(m1, "histogram cluster_queue_wait_seconds") {
		t.Errorf("metrics dump missing scheduler metrics:\n%s", m1)
	}
	tr2, m2 := read()
	if tr1 != tr2 {
		t.Error("trace export not byte-identical across runs")
	}
	if m1 != m2 {
		t.Error("metrics dump not byte-identical across runs")
	}
}

// TestBenchDirWritesJSON checks -bench-dir emits the machine-readable
// metrics file, with the virtual-time figures deterministic across runs.
// wall_* keys are real wall-clock measurements, so they are required to be
// present and positive but exempt from the byte-identity requirement.
func TestBenchDirWritesJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the jobs experiment twice")
	}
	read := func() map[string]float64 {
		dir := t.TempDir()
		if code, _, errb := runCmd("-quick", "-bench-dir", dir, "jobs"); code != 0 {
			t.Fatalf("exit %d: %s", code, errb)
		}
		b, err := os.ReadFile(filepath.Join(dir, "BENCH_jobs.json"))
		if err != nil {
			t.Fatal(err)
		}
		m := map[string]float64{}
		if err := json.Unmarshal(b, &m); err != nil {
			t.Fatalf("BENCH_jobs.json: %v\n%s", err, b)
		}
		return m
	}
	j1 := read()
	for _, key := range []string{"virtual_makespan_serial", "virtual_makespan_concurrent",
		"speedup", "throughput_jobs_per_vs"} {
		if _, ok := j1[key]; !ok {
			t.Fatalf("BENCH_jobs.json missing %q: %v", key, j1)
		}
	}
	for _, key := range []string{"wall_seconds_concurrent", "wall_per_virtual"} {
		if j1[key] <= 0 {
			t.Fatalf("BENCH_jobs.json %s = %g, want > 0", key, j1[key])
		}
	}
	j2 := read()
	for key, v1 := range j1 {
		if strings.HasPrefix(key, "wall_") {
			continue
		}
		if v2, ok := j2[key]; !ok || math.Float64bits(v1) != math.Float64bits(v2) {
			t.Fatalf("BENCH_jobs.json %s not deterministic: %v vs %v", key, v1, j2[key])
		}
	}
	if len(j1) != len(j2) {
		t.Fatalf("BENCH_jobs.json key sets differ: %v vs %v", j1, j2)
	}
}

// TestEventsDeterministic is the telemetry-plane acceptance bar: two
// identical runs with -events must write byte-identical JSONL logs, with the
// versioned schema header on line one.
func TestEventsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the jobs experiment twice")
	}
	read := func() string {
		dir := t.TempDir()
		ev := filepath.Join(dir, "events.jsonl")
		code, _, errb := runCmd("-quick", "-experiment", "jobs", "-events", ev)
		if code != 0 {
			t.Fatalf("exit %d: %s", code, errb)
		}
		b, err := os.ReadFile(ev)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	e1 := read()
	if !strings.HasPrefix(e1, `{"schema":"repro.events.v1"`) {
		t.Fatalf("event log missing schema header:\n%.200s", e1)
	}
	for _, want := range []string{`"e":"span"`, `"e":"sample"`, `"name":"run"`} {
		if !strings.Contains(e1, want) {
			t.Fatalf("event log missing %s events", want)
		}
	}
	if e2 := read(); e1 != e2 {
		t.Error("event logs not byte-identical across runs")
	}
}

// TestSLOStrictFires: an impossible threshold must fire, log an alert event,
// and turn into a nonzero exit under -slo-strict.
func TestSLOStrictFires(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the jobs experiment")
	}
	dir := t.TempDir()
	ev := filepath.Join(dir, "events.jsonl")
	code, _, errb := runCmd("-quick", "-experiment", "jobs", "-events", ev,
		"-slo", "tight=p99(cluster_queue_wait_seconds)<1e-12", "-slo-strict")
	if code != 1 {
		t.Fatalf("exit %d, want 1 (stderr %q)", code, errb)
	}
	if !strings.Contains(errb, "SLO tight violated") {
		t.Fatalf("stderr missing violation: %q", errb)
	}
	b, err := os.ReadFile(ev)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"e":"alert"`) || !strings.Contains(string(b), `"name":"tight"`) {
		t.Fatalf("event log missing alert:\n%.400s", b)
	}
}

// TestSLOStrictDefaultsPass: the stock rule set holds on the healthy jobs
// experiment, so -slo-strict alone exits zero.
func TestSLOStrictDefaultsPass(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the jobs experiment")
	}
	code, _, errb := runCmd("-quick", "-experiment", "jobs", "-slo-strict")
	if code != 0 {
		t.Fatalf("exit %d, want 0 (stderr %q)", code, errb)
	}
}

// TestTelemetryNeedsOneExperiment extends the single-experiment guard to the
// telemetry flags.
func TestTelemetryNeedsOneExperiment(t *testing.T) {
	dir := t.TempDir()
	for _, args := range [][]string{
		{"-events", filepath.Join(dir, "e.jsonl"), "table1", "fig1"},
		{"-slo-strict", "all"},
	} {
		code, _, errb := runCmd(args...)
		if code != 2 {
			t.Errorf("%v: exit %d, want 2 (stderr %q)", args, code, errb)
		}
	}
}
