package repro

// One benchmark per table and figure of the paper's evaluation (§IV). Each
// runs its experiment end-to-end at a reduced scale (so `go test -bench=.`
// finishes in seconds) and reports the experiment's headline quantity as a
// custom metric. Run cmd/ccexp for paper-scale regeneration; EXPERIMENTS.md
// records paper-vs-measured values.

import (
	"strconv"
	"testing"

	"repro/internal/experiments"
)

// benchCfg keeps every figure cheap enough for repeated -bench runs.
var benchCfg = experiments.Config{Scale: 0.02, Quick: true}

func runExperiment(b *testing.B, id string) *experiments.Table {
	b.Helper()
	r, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("no experiment %q", id)
	}
	var tb *experiments.Table
	for i := 0; i < b.N; i++ {
		var err error
		tb, err = r.Run(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	return tb
}

// cellFloat parses a numeric table cell.
func cellFloat(b *testing.B, tb *experiments.Table, row, col int) float64 {
	b.Helper()
	v, err := strconv.ParseFloat(tb.Rows[row][col], 64)
	if err != nil {
		b.Fatalf("%s[%d][%d] = %q", tb.ID, row, col, tb.Rows[row][col])
	}
	return v
}

// BenchmarkTableI regenerates Table I (static, quoted from the paper).
func BenchmarkTableI(b *testing.B) {
	tb := runExperiment(b, "table1")
	b.ReportMetric(float64(len(tb.Rows)), "projects")
}

// BenchmarkFig1 regenerates the two-phase collective I/O profile and reports
// the shuffle share of phase time (paper: ~20%).
func BenchmarkFig1(b *testing.B) {
	tb := runExperiment(b, "fig1")
	var read, shuffle float64
	for i := range tb.Rows {
		read += cellFloat(b, tb, i, 1)
		shuffle += cellFloat(b, tb, i, 2)
	}
	b.ReportMetric(100*shuffle/(read+shuffle), "shuffle-%")
}

// BenchmarkFig2 regenerates the collective-I/O CPU profile and reports the
// mean user% (MPI busy-wait shows as user time, as on a real node).
func BenchmarkFig2(b *testing.B) {
	tb := runExperiment(b, "fig2")
	var user float64
	for i := range tb.Rows {
		user += cellFloat(b, tb, i, 1)
	}
	b.ReportMetric(user/float64(len(tb.Rows)), "mean-user-%")
}

// BenchmarkFig3 regenerates the independent-I/O CPU profile and reports the
// mean wait% (paper: independent I/O is wait-dominated).
func BenchmarkFig3(b *testing.B) {
	tb := runExperiment(b, "fig3")
	var wait float64
	for i := range tb.Rows {
		wait += cellFloat(b, tb, i, 3)
	}
	b.ReportMetric(wait/float64(len(tb.Rows)), "mean-wait-%")
}

// BenchmarkFig9 regenerates the computation:I/O ratio sweep and reports the
// peak speedup (paper: 2.44x at 1:1) and the 1:1 speedup.
func BenchmarkFig9(b *testing.B) {
	tb := runExperiment(b, "fig9")
	var peak float64
	for i := range tb.Rows {
		if sp := cellFloat(b, tb, i, 3); sp > peak {
			peak = sp
		}
	}
	b.ReportMetric(peak, "peak-speedup")
	b.ReportMetric(cellFloat(b, tb, 3, 3), "speedup@1:1")
}

// BenchmarkFig10 regenerates the weak-scaling sweep and reports the speedup
// at the largest process count (paper: 1.7x at 1024).
func BenchmarkFig10(b *testing.B) {
	tb := runExperiment(b, "fig10")
	b.ReportMetric(cellFloat(b, tb, len(tb.Rows)-1, 3), "speedup@max-procs")
}

// BenchmarkFig11 regenerates the overhead analysis and reports the ratio of
// CC-40G to MPI-40G overhead at the smallest process count (paper: CC adds
// no bottleneck).
func BenchmarkFig11(b *testing.B) {
	tb := runExperiment(b, "fig11")
	mpi40 := cellFloat(b, tb, 0, 1)
	cc40 := cellFloat(b, tb, 0, 2)
	if mpi40 > 0 {
		b.ReportMetric(cc40/mpi40, "cc/mpi-overhead")
	}
}

// BenchmarkFig12 regenerates the metadata sweep and reports the reduction
// factor from the smallest to the largest collective buffer.
func BenchmarkFig12(b *testing.B) {
	tb := runExperiment(b, "fig12")
	first := cellFloat(b, tb, 0, 1)
	last := cellFloat(b, tb, len(tb.Rows)-1, 1)
	if last > 0 {
		b.ReportMetric(first/last, "metadata-reduction")
	}
}

// BenchmarkFig13 regenerates the WRF application test and reports the mean
// speedup (paper: ~1.45x).
func BenchmarkFig13(b *testing.B) {
	tb := runExperiment(b, "fig13")
	var sum float64
	for i := range tb.Rows {
		sum += cellFloat(b, tb, i, 3)
	}
	b.ReportMetric(sum/float64(len(tb.Rows)), "mean-speedup")
}
